// Package core assembles the paper's architecture: the service interface
// (Section 8), the service commitments of Section 3, the Parekh–Gallager
// bound computation, edge conformance enforcement, and a network builder
// that puts a unified scheduler (Section 7) on every link.
package core

import (
	"fmt"
	"math"
)

// GuaranteedSpec is the guaranteed-service interface of Section 8: "the
// source only needs to specify the needed clock rate r". The network
// guarantees the rate; the source privately knows its b(r) and computes its
// own worst-case queueing delay. No conformance check is performed because
// the flow makes no traffic commitment.
type GuaranteedSpec struct {
	// ClockRate is r, in bits/second, reserved at every switch on the
	// path.
	ClockRate float64
	// BucketBits is the source's own b(r) in bits; it is not part of
	// what the network needs, but the library uses it to report the
	// Parekh-Gallager bound the source would compute.
	BucketBits float64
}

// Validate reports whether the spec is usable.
func (s GuaranteedSpec) Validate() error {
	if s.ClockRate <= 0 {
		return fmt.Errorf("core: guaranteed clock rate must be positive, got %v", s.ClockRate)
	}
	return nil
}

// PredictedSpec is the predicted-service interface of Section 8: the token
// bucket (r, b) the source commits to, and the (D, L) delay/loss service it
// requests. The network enforces (r, b) at the edge and uses (D, L) to
// assign the flow to an aggregate class at each switch.
type PredictedSpec struct {
	// TokenRate is r in bits/second; BucketBits is b in bits.
	TokenRate  float64
	BucketBits float64
	// Delay is the requested target delay D (seconds, per path).
	Delay float64
	// Loss is the tolerable loss rate L (fraction).
	Loss float64
}

// Validate reports whether the spec is usable.
func (s PredictedSpec) Validate() error {
	if s.TokenRate <= 0 || s.BucketBits <= 0 {
		return fmt.Errorf("core: predicted token bucket (r=%v, b=%v) must be positive", s.TokenRate, s.BucketBits)
	}
	if s.Delay <= 0 {
		return fmt.Errorf("core: predicted delay target must be positive, got %v", s.Delay)
	}
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("core: loss target must be in [0,1), got %v", s.Loss)
	}
	return nil
}

// PGBound is the Parekh–Gallager end-to-end queueing delay bound as the paper
// computes it for a flow with token bucket depth bucketBits, clock rate
// rateBits (the same at every switch), crossing hops inter-switch links with
// maximum packet size maxPktBits:
//
//	D = b/r + (K−1)·Lmax/r
//
// The fluid term b/r is the delay of a full token-bucket burst drained at the
// clock rate; the (K−1)·Lmax/r term is the packetization penalty of PGPS at
// each hop after the first. Store-and-forward transmission time is part of
// the *fixed* delay, which the paper does not count as queueing (this choice
// reproduces the paper's printed bounds exactly, e.g. 588.24 ms for a
// Guaranteed-Average flow with b = 50 packets, r = 85 packets/s, 1 hop).
func PGBound(bucketBits, rateBits float64, hops int, maxPktBits float64) float64 {
	if hops < 1 || rateBits <= 0 {
		return math.Inf(1)
	}
	return bucketBits/rateBits + float64(hops-1)*maxPktBits/rateBits
}

// PGBoundPacketized is Parekh's complete packetized-GPS queueing bound,
//
//	D = b/r + (K−1)·Lmax/r + Σₖ Lmax/µₖ,
//
// which adds the per-hop non-preemption term Lmax/µ the paper's printed
// bounds omit: a packet arriving at a busy server must wait for the packet
// in service even if its own finish tag is smaller. Measured worst-case
// delays in a saturated network sit between PGBound and this value; our
// simulations hit it to within a packet time (see EXPERIMENTS.md).
func PGBoundPacketized(bucketBits, rateBits float64, hops int, maxPktBits, linkRate float64) float64 {
	if hops < 1 || rateBits <= 0 || linkRate <= 0 {
		return math.Inf(1)
	}
	return PGBound(bucketBits, rateBits, hops, maxPktBits) + float64(hops)*maxPktBits/linkRate
}
