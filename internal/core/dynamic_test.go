package core

import (
	"strings"
	"testing"

	"ispn/internal/packet"
	"ispn/internal/sim"
	"ispn/internal/source"
)

// newChain builds A -> B -> C at 1 Mbit/s with admission control as asked.
func newChain(t *testing.T, admission bool) *Network {
	t.Helper()
	n := New(Config{Seed: 7, AdmissionControl: admission})
	for _, s := range []string{"A", "B", "C"} {
		n.AddSwitch(s)
	}
	n.Connect("A", "B")
	n.Connect("B", "C")
	return n
}

func TestConnectWithDiagnostics(t *testing.T) {
	n := New(Config{})
	n.AddSwitch("A")
	n.AddSwitch("B")
	cases := []struct {
		from, to    string
		rate, delay float64
		want        string
	}{
		{"A", "X", 1e6, 0, `unknown switch "X"`},
		{"X", "B", 1e6, 0, `unknown switch "X"`},
		{"A", "B", 0, 0, "rate must be positive"},
		{"A", "B", -5, 0, "rate must be positive"},
		{"A", "B", 1e6, -0.001, "delay must be non-negative"},
	}
	for _, tc := range cases {
		if _, err := n.ConnectWith(tc.from, tc.to, tc.rate, tc.delay, nil); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ConnectWith(%s,%s,%v,%v) err = %v, want containing %q",
				tc.from, tc.to, tc.rate, tc.delay, err, tc.want)
		}
	}
	if _, err := n.ConnectWith("A", "B", 1e6, 0, nil); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if _, err := n.ConnectWith("A", "B", 1e6, 0, nil); err == nil || !strings.Contains(err.Error(), "duplicate link") {
		t.Fatalf("duplicate link err = %v, want duplicate diagnostic", err)
	}
}

// TestReleaseFreesGuaranteedCapacity is the departure-releases-capacity
// contract: a request that the reservation quota rejects while an earlier
// flow holds the link is admitted once that flow departs.
func TestReleaseFreesGuaranteedCapacity(t *testing.T) {
	n := newChain(t, false)
	path := []string{"A", "B", "C"}
	if _, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 5e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("first reservation rejected: %v", err)
	}
	// 500k + 500k > 0.9 * 1M: quota rejection.
	if _, err := n.RequestGuaranteed(2, path, GuaranteedSpec{ClockRate: 5e5, BucketBits: 5e4}); err == nil {
		t.Fatal("oversubscribing reservation was admitted")
	}
	n.Release(1)
	if _, err := n.RequestGuaranteed(3, path, GuaranteedSpec{ClockRate: 5e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("post-departure reservation rejected: %v", err)
	}
}

// Mid-run departure with traffic in flight: the tail drains, nothing panics,
// and the released WFQ share is reusable.
func TestMidRunDepartureDrains(t *testing.T) {
	n := newChain(t, false)
	path := []string{"A", "B", "C"}
	f, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 2e5, BucketBits: 5e4})
	if err != nil {
		t.Fatal(err)
	}
	src := source.NewCBR(source.CBRConfig{SizeBits: 1000, Rate: 200, RNG: sim.DeriveRNG(7, "cbr")})
	src.Start(n.Engine(), func(p *packet.Packet) { f.Inject(p) })
	n.Run(5)
	src.Stop()
	n.Release(1)
	n.Run(5)
	delivered := f.Delivered()
	if delivered == 0 {
		t.Fatal("no packets delivered before departure")
	}
	if got := src.Generated(); got >= 1001 {
		t.Fatalf("stopped source kept generating: %d packets", got)
	}
	// The freed share is immediately reusable at full size.
	if _, err := n.RequestGuaranteed(2, path, GuaranteedSpec{ClockRate: 8e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("released share not reusable: %v", err)
	}
	n.Run(1)
	if f.Delivered() < delivered {
		t.Fatal("delivered count went backwards")
	}
}

// Release with admission control on: the warmup ledger entry is handed back,
// so a follow-up request inside the warmup window is admitted.
func TestReleaseReturnsAdmissionLedger(t *testing.T) {
	n := newChain(t, true)
	path := []string{"A", "B", "C"}
	if _, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 8e5, BucketBits: 5e4}); err != nil {
		t.Fatal(err)
	}
	// Inside the warmup window the declared 800k blocks another 200k.
	if _, err := n.RequestGuaranteed(2, path, GuaranteedSpec{ClockRate: 2e5, BucketBits: 5e4}); err == nil {
		t.Fatal("ledger did not block the follow-up")
	}
	n.Release(1)
	if _, err := n.RequestGuaranteed(3, path, GuaranteedSpec{ClockRate: 2e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("released ledger capacity still blocking: %v", err)
	}
}

func TestSetLinkAndFailRestore(t *testing.T) {
	n := newChain(t, false)
	path := []string{"A", "B", "C"}
	if _, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 3e5, BucketBits: 5e4}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLink("A", "B", 2e5, 0); err == nil {
		t.Fatal("rate below reservations accepted")
	}
	if err := n.SetLink("A", "B", 2e6, 0.010); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	pt, _ := n.port("A", "B")
	if pt.Bandwidth() != 2e6 || pt.PropDelay() != 0.010 {
		t.Fatalf("link not reconfigured: %v bits/s, %vs", pt.Bandwidth(), pt.PropDelay())
	}
	if err := n.SetLink("A", "X", 1e6, 0); err == nil {
		t.Fatal("SetLink on unknown link did not error")
	}
	if err := n.FailLink("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreLink("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink("C", "A"); err == nil {
		t.Fatal("FailLink on unknown link did not error")
	}
}

// Link failure while a guaranteed flow is active: queued and arriving
// packets are dropped (not stranded, no panic), service resumes on restore.
func TestLinkFailureUnderGuaranteedLoad(t *testing.T) {
	n := newChain(t, false)
	path := []string{"A", "B", "C"}
	f, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 2e5, BucketBits: 5e4})
	if err != nil {
		t.Fatal(err)
	}
	src := source.NewCBR(source.CBRConfig{SizeBits: 1000, Rate: 200, RNG: sim.DeriveRNG(7, "cbr")})
	src.Start(n.Engine(), func(p *packet.Packet) { f.Inject(p) })
	n.Run(5)
	before := f.Delivered()
	if before == 0 {
		t.Fatal("no traffic before failure")
	}
	if err := n.FailLink("B", "C"); err != nil {
		t.Fatal(err)
	}
	n.Run(5)
	during := f.Delivered()
	pt, _ := n.port("B", "C")
	if pt.Counter().Dropped == 0 {
		t.Fatal("failed link dropped nothing under load")
	}
	if err := n.RestoreLink("B", "C"); err != nil {
		t.Fatal(err)
	}
	n.Run(5)
	if f.Delivered() <= during {
		t.Fatal("service did not resume after restore")
	}
}

func TestRenegotiateGuaranteed(t *testing.T) {
	n := newChain(t, false)
	path := []string{"A", "B", "C"}
	f, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 2e5, BucketBits: 5e4})
	if err != nil {
		t.Fatal(err)
	}
	oldBound := f.Bound()
	if err := n.RenegotiateGuaranteed(1, GuaranteedSpec{ClockRate: 4e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if f.Bound() >= oldBound {
		t.Fatalf("bound did not tighten with a faster clock: %v -> %v", oldBound, f.Bound())
	}
	// Growing past the quota must fail and leave the spec unchanged.
	if err := n.RenegotiateGuaranteed(1, GuaranteedSpec{ClockRate: 9.5e5, BucketBits: 5e4}); err == nil {
		t.Fatal("quota-busting renegotiation accepted")
	}
	if f.declaredRate != 4e5 {
		t.Fatalf("failed renegotiation mutated the flow: rate %v", f.declaredRate)
	}
	if err := n.RenegotiateGuaranteed(1, GuaranteedSpec{ClockRate: 1e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if err := n.RenegotiateGuaranteed(99, GuaranteedSpec{ClockRate: 1e5}); err == nil {
		t.Fatal("renegotiating unknown flow did not error")
	}
}

func TestRenegotiatePredicted(t *testing.T) {
	n := newChain(t, false)
	path := []string{"A", "B", "C"}
	f, err := n.RequestPredicted(1, path, PredictedSpec{TokenRate: 8.5e4, BucketBits: 5e4, Delay: 0.7, Loss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	class := f.Priority
	if err := n.RenegotiatePredicted(1, PredictedSpec{TokenRate: 1.7e5, BucketBits: 6e4, Loss: 0.01}); err != nil {
		t.Fatalf("renegotiate: %v", err)
	}
	if f.Priority != class {
		t.Fatal("renegotiation moved the flow to another class")
	}
	if f.declaredRate != 1.7e5 {
		t.Fatalf("declared rate = %v, want 1.7e5", f.declaredRate)
	}
	if err := n.RenegotiatePredicted(99, PredictedSpec{TokenRate: 1e5, BucketBits: 1e4}); err == nil {
		t.Fatal("renegotiating unknown flow did not error")
	}
	if err := n.RenegotiatePredicted(1, PredictedSpec{TokenRate: -1, BucketBits: 1e4}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// A mid-run link rate change must reach the admission controller: a request
// sized for the old capacity has to be rejected against the new one.
func TestSetLinkUpdatesAdmissionRate(t *testing.T) {
	n := New(Config{Seed: 7, AdmissionControl: true, LinkRate: 10e6})
	n.AddSwitch("A")
	n.AddSwitch("B")
	n.Connect("A", "B")
	path := []string{"A", "B"}
	// Create the controller under the 10 Mbit/s rate.
	if _, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 1e5, BucketBits: 5e4}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetLink("A", "B", 1e6, 0); err != nil {
		t.Fatal(err)
	}
	// 800k fits 90% of 10M easily but not 90% of 1M on top of the 100k.
	if _, err := n.RequestGuaranteed(2, path, GuaranteedSpec{ClockRate: 8.5e5, BucketBits: 5e4}); err == nil {
		t.Fatal("admission used the stale 10 Mbit/s link rate after SetLink")
	}
	if _, err := n.RequestGuaranteed(3, path, GuaranteedSpec{ClockRate: 5e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("right-sized request rejected against the new rate: %v", err)
	}
}

// Departure of a renegotiated flow must hand back every warmup-ledger entry
// it committed (initial rate and the renegotiation delta).
func TestReleaseAfterRenegotiationFreesLedger(t *testing.T) {
	n := newChain(t, true)
	path := []string{"A", "B", "C"}
	if _, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 4e5, BucketBits: 5e4}); err != nil {
		t.Fatal(err)
	}
	if err := n.RenegotiateGuaranteed(1, GuaranteedSpec{ClockRate: 6e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("grow: %v", err)
	}
	// Inside warmup, 600k of declared load blocks a 400k follow-up.
	if _, err := n.RequestGuaranteed(2, path, GuaranteedSpec{ClockRate: 4e5, BucketBits: 5e4}); err == nil {
		t.Fatal("ledger did not reflect the renegotiated rate")
	}
	n.Release(1)
	if _, err := n.RequestGuaranteed(3, path, GuaranteedSpec{ClockRate: 4e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("renegotiated flow's departure did not free its ledger entries: %v", err)
	}
}

// A multi-hop request refused at a later hop must roll back the ledger
// entries already committed at earlier hops.
func TestPartialAdmissionRollsBack(t *testing.T) {
	n := New(Config{Seed: 7, AdmissionControl: true})
	for _, s := range []string{"A", "B", "C"} {
		n.AddSwitch(s)
	}
	n.Connect("A", "B") // 1 Mbit/s
	if _, err := n.ConnectWith("B", "C", 2e5, 0, nil); err != nil {
		t.Fatal(err)
	}
	// 500k passes A->B but fails B->C (0.9 * 200k = 180k): the whole
	// request is refused and A->B must not keep a phantom 500k charge.
	if _, err := n.RequestGuaranteed(1, []string{"A", "B", "C"}, GuaranteedSpec{ClockRate: 5e5, BucketBits: 5e4}); err == nil {
		t.Fatal("undersized hop admitted 500k")
	}
	if _, err := n.RequestGuaranteed(2, []string{"A", "B"}, GuaranteedSpec{ClockRate: 8e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("failed request left phantom load on the first hop: %v", err)
	}
}

// Shrink-then-grow must leave the flow's ledger claim at exactly its new
// total rate — not the stale original plus the grow delta.
func TestRenegotiateShrinkReplacesLedger(t *testing.T) {
	n := newChain(t, true)
	path := []string{"A", "B", "C"}
	if _, err := n.RequestGuaranteed(1, path, GuaranteedSpec{ClockRate: 8e5, BucketBits: 5e4}); err != nil {
		t.Fatal(err)
	}
	if err := n.RenegotiateGuaranteed(1, GuaranteedSpec{ClockRate: 2e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	// With the claim shrunk to 200k, a 600k request fits (200+600 < 900);
	// a stale 800k entry would have blocked it.
	if _, err := n.RequestGuaranteed(2, path, GuaranteedSpec{ClockRate: 6e5, BucketBits: 5e4}); err != nil {
		t.Fatalf("shrunk flow still charges its old rate: %v", err)
	}
}

// Growing only the bucket is still a bigger commitment: criterion 2 bounds
// burst depth against class delay headroom and must be re-tested.
func TestRenegotiateBucketGrowthIsTested(t *testing.T) {
	n := newChain(t, true)
	path := []string{"A", "B", "C"}
	f, err := n.RequestPredicted(1, path, PredictedSpec{TokenRate: 8.5e4, BucketBits: 5e4, Delay: 1.0, Loss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// Same rate, vastly deeper bucket: (D=0.32)(µ−ν̂) ≈ 262kbit of room,
	// so a 5Mbit bucket must be refused and the old spec kept.
	err = n.RenegotiatePredicted(1, PredictedSpec{TokenRate: 8.5e4, BucketBits: 5e6, Loss: 0.01})
	if err == nil {
		t.Fatal("unbounded bucket growth passed without an admission test")
	}
	if f.PredictedSpec().BucketBits != 5e4 {
		t.Fatalf("failed renegotiation mutated the bucket: %v", f.PredictedSpec().BucketBits)
	}
	// A modest growth fits and is accepted.
	if err := n.RenegotiatePredicted(1, PredictedSpec{TokenRate: 8.5e4, BucketBits: 8e4, Loss: 0.01}); err != nil {
		t.Fatalf("modest bucket growth refused: %v", err)
	}
}

// A partial renegotiation (Delay unset) must keep the flow's negotiated
// delay target readable, not a placeholder.
func TestRenegotiatePredictedKeepsDelayTarget(t *testing.T) {
	n := newChain(t, false)
	f, err := n.RequestPredicted(1, []string{"A", "B", "C"}, PredictedSpec{TokenRate: 8.5e4, BucketBits: 5e4, Delay: 0.7, Loss: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.RenegotiatePredicted(1, PredictedSpec{TokenRate: 1e5, BucketBits: 5e4}); err != nil {
		t.Fatal(err)
	}
	if got := f.PredictedSpec().Delay; got != 0.7 {
		t.Fatalf("stored delay target = %v after partial renegotiation, want 0.7", got)
	}
}
