package core

import (
	"math"
	"testing"

	"ispn/internal/packet"
	"ispn/internal/source"
)

// twoSwitch builds S1 -> S2 with defaults.
func twoSwitch(cfg Config) *Network {
	n := New(cfg)
	n.AddSwitch("S1")
	n.AddSwitch("S2")
	n.Connect("S1", "S2")
	return n
}

func TestPGBoundMatchesPaperTable3(t *testing.T) {
	// The paper's printed Parekh-Gallager bounds (in ms, 1000-bit
	// packets): Guaranteed-Average, r = 85 pkt/s = 85000 bits/s,
	// b = 50 packets = 50000 bits.
	cases := []struct {
		b, r  float64
		hops  int
		want  float64 // ms
		label string
	}{
		{50000, 85000, 1, 588.24, "Average path 1"},
		{50000, 85000, 3, 611.76, "Average path 3"},
		{1000, 170000, 2, 11.76, "Peak path 2"},
		{1000, 170000, 4, 23.53, "Peak path 4"},
	}
	for _, c := range cases {
		got := PGBound(c.b, c.r, c.hops, 1000) * 1000
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("%s: PGBound = %.2f ms, want %.2f", c.label, got, c.want)
		}
	}
}

func TestPGBoundDegenerate(t *testing.T) {
	if !math.IsInf(PGBound(1, 1, 0, 1), 1) {
		t.Fatal("0 hops should be +Inf")
	}
	if !math.IsInf(PGBound(1, 0, 1, 1), 1) {
		t.Fatal("0 rate should be +Inf")
	}
}

func TestSpecValidation(t *testing.T) {
	if err := (GuaranteedSpec{ClockRate: 0}).Validate(); err == nil {
		t.Error("zero clock rate accepted")
	}
	if err := (GuaranteedSpec{ClockRate: 1}).Validate(); err != nil {
		t.Error(err)
	}
	bad := []PredictedSpec{
		{TokenRate: 0, BucketBits: 1, Delay: 1},
		{TokenRate: 1, BucketBits: 0, Delay: 1},
		{TokenRate: 1, BucketBits: 1, Delay: 0},
		{TokenRate: 1, BucketBits: 1, Delay: 1, Loss: 1.5},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	if err := (PredictedSpec{TokenRate: 1, BucketBits: 1, Delay: 1, Loss: 0.01}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestGuaranteedReservationQuota(t *testing.T) {
	n := twoSwitch(Config{})
	// 0.9 Mbit/s is reservable; the next byte is not.
	if _, err := n.RequestGuaranteed(1, []string{"S1", "S2"}, GuaranteedSpec{ClockRate: 8e5}); err != nil {
		t.Fatalf("800k reservation failed: %v", err)
	}
	if _, err := n.RequestGuaranteed(2, []string{"S1", "S2"}, GuaranteedSpec{ClockRate: 2e5}); err == nil {
		t.Fatal("reservation into the datagram quota accepted")
	}
	// Releasing frees capacity.
	n.Release(1)
	if _, err := n.RequestGuaranteed(3, []string{"S1", "S2"}, GuaranteedSpec{ClockRate: 2e5}); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestDuplicateFlowIDRejected(t *testing.T) {
	n := twoSwitch(Config{})
	if _, err := n.RequestGuaranteed(1, []string{"S1", "S2"}, GuaranteedSpec{ClockRate: 1e5}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RequestGuaranteed(1, []string{"S1", "S2"}, GuaranteedSpec{ClockRate: 1e5}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := n.RequestPredictedClass(1, []string{"S1", "S2"}, 0, PredictedSpec{TokenRate: 1e5, BucketBits: 1e4, Delay: 1}); err == nil {
		t.Fatal("duplicate id accepted for predicted")
	}
	if _, err := n.AddDatagramFlow(1, []string{"S1", "S2"}); err == nil {
		t.Fatal("duplicate id accepted for datagram")
	}
}

func TestGuaranteedDelayWithinPGBound(t *testing.T) {
	// End-to-end: a policed Markov flow with clock rate = peak rate must
	// see queueing delays below its P-G bound even with heavy predicted
	// cross-traffic.
	n := twoSwitch(Config{Seed: 17})
	const A = 85.0
	g, err := n.RequestGuaranteed(1, []string{"S1", "S2"},
		GuaranteedSpec{ClockRate: 2 * A * 1000, BucketBits: 1000})
	if err != nil {
		t.Fatal(err)
	}
	gsrc := source.NewPoliced(source.NewMarkov(source.MarkovConfig{
		FlowID: 1, SizeBits: 1000, PeakRate: 2 * A, AvgRate: A, Burst: 5,
		RNG: n.RNG("g"),
	}), 2*A, 1) // (P, 1): conforms to the peak-rate bucket the bound assumes
	gsrc.Start(n.Engine(), func(p *packet.Packet) { g.Inject(p) })

	// Cross traffic: 6 predicted flows at the same statistics.
	for i := 0; i < 6; i++ {
		id := uint32(10 + i)
		f, err := n.RequestPredictedClass(id, []string{"S1", "S2"}, 0,
			PredictedSpec{TokenRate: A * 1000, BucketBits: 50000, Delay: 1})
		if err != nil {
			t.Fatal(err)
		}
		src := source.NewMarkov(source.MarkovConfig{
			FlowID: id, SizeBits: 1000, PeakRate: 2 * A, AvgRate: A, Burst: 5,
			RNG: n.RNG(f.Path()[0] + string(rune('a'+i))),
		})
		src.Start(n.Engine(), func(p *packet.Packet) { f.Inject(p) })
	}
	n.Run(120)
	if g.Delivered() < 5000 {
		t.Fatalf("only %d guaranteed packets delivered", g.Delivered())
	}
	// b/r for (P, 1 packet) is 1000/(170000) ≈ 5.9ms; add the PGPS
	// one-max-packet-per-hop packetization slack our bound formula
	// reserves for multi-hop... single hop: bound = b/r. Measured max
	// queueing must be under bound + one packet time at the link.
	bound := g.Bound() + 1000/1e6
	if max := g.Meter().Max(); max > bound+1e-9 {
		t.Fatalf("guaranteed max queueing %.4f exceeds P-G bound %.4f", max, bound)
	}
}

func TestPredictedEdgePolicingDrops(t *testing.T) {
	n := twoSwitch(Config{Seed: 1})
	f, err := n.RequestPredictedClass(1, []string{"S1", "S2"}, 0,
		PredictedSpec{TokenRate: 85000, BucketBits: 50000, Delay: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := source.NewMarkov(source.MarkovConfig{
		FlowID: 1, SizeBits: 1000, PeakRate: 170, AvgRate: 85, Burst: 5,
		RNG: n.RNG("m"),
	})
	src.Start(n.Engine(), func(p *packet.Packet) { f.Inject(p) })
	n.Run(600)
	st := f.PolicerStats()
	if st.Total == 0 {
		t.Fatal("no packets")
	}
	dr := st.DropRate()
	// The paper's (A, 50) filter drops ~2%.
	if dr < 0.002 || dr > 0.08 {
		t.Fatalf("edge policing drop rate = %.4f, want ~0.02", dr)
	}
	if f.Delivered() != st.Total-st.Dropped {
		t.Fatalf("delivered %d, want %d", f.Delivered(), st.Total-st.Dropped)
	}
}

func TestPredictedClassSelectionByDelay(t *testing.T) {
	// Default targets: class 0 = 32 ms/switch, class 1 = 320 ms/switch.
	n := New(Config{})
	n.AddSwitch("S1")
	n.AddSwitch("S2")
	n.AddSwitch("S3")
	n.Connect("S1", "S2")
	n.Connect("S2", "S3")
	path := []string{"S1", "S2", "S3"}
	// 2 hops: advertised bounds 64 ms (class 0), 640 ms (class 1).
	// A client needing 100 ms must land in class 0 (class 1's 640 ms
	// advertised bound is too weak).
	f, err := n.RequestPredicted(1, path, PredictedSpec{TokenRate: 1e5, BucketBits: 1e4, Delay: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Priority != 0 {
		t.Fatalf("Priority = %d, want 0", f.Priority)
	}
	// A tolerant client (1 s) lands in the cheaper class 1.
	f2, err := n.RequestPredicted(2, path, PredictedSpec{TokenRate: 1e5, BucketBits: 1e4, Delay: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Priority != 1 {
		t.Fatalf("Priority = %d, want 1", f2.Priority)
	}
	// An impossible target is rejected.
	if _, err := n.RequestPredicted(3, path, PredictedSpec{TokenRate: 1e5, BucketBits: 1e4, Delay: 0.01}); err == nil {
		t.Fatal("impossible delay target accepted")
	}
	// Advertised bound is the sum of per-switch targets.
	if got := f.Bound(); math.Abs(got-0.064) > 1e-12 {
		t.Fatalf("advertised bound = %v, want 0.064", got)
	}
}

func TestAdmissionControlEndToEnd(t *testing.T) {
	// With admission control on, an unloaded link accepts a first flow
	// and rejects a pile-up of declared rates.
	n := twoSwitch(Config{AdmissionControl: true, ClassTargets: []float64{0.1, 1.0}})
	accepted := 0
	for i := 0; i < 10; i++ {
		_, err := n.RequestGuaranteed(uint32(1+i), []string{"S1", "S2"}, GuaranteedSpec{ClockRate: 2e5})
		if err == nil {
			accepted++
		}
	}
	if accepted == 0 || accepted >= 10 {
		t.Fatalf("accepted %d, want some but not all", accepted)
	}
}

func TestDatagramFlowBound(t *testing.T) {
	n := twoSwitch(Config{})
	f, err := n.AddDatagramFlow(1, []string{"S1", "S2"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Bound() >= 0 {
		t.Fatal("datagram flows have no bound")
	}
	if f.Class != packet.Datagram {
		t.Fatal("wrong class")
	}
}

func TestFlowTap(t *testing.T) {
	n := twoSwitch(Config{})
	f, err := n.AddDatagramFlow(1, []string{"S1", "S2"})
	if err != nil {
		t.Fatal(err)
	}
	taps := 0
	f.Tap(func(p *packet.Packet, q float64) { taps++ })
	f.Inject(&packet.Packet{Size: 1000, CreatedAt: 0})
	n.Run(1)
	if taps != 1 {
		t.Fatalf("tap called %d times, want 1", taps)
	}
	if n.Flow(1) != f {
		t.Fatal("Flow lookup failed")
	}
}

func TestConfigDefaults(t *testing.T) {
	n := New(Config{})
	cfg := n.Config()
	if cfg.LinkRate != 1e6 || cfg.PredictedClasses != 2 ||
		cfg.BufferPackets != 200 || cfg.MaxPacketBits != 1000 ||
		cfg.DatagramQuota != 0.10 || len(cfg.ClassTargets) != 2 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	// Targets are widely spaced (order of magnitude).
	if cfg.ClassTargets[1] < 5*cfg.ClassTargets[0] {
		t.Fatalf("class targets not widely spaced: %v", cfg.ClassTargets)
	}
}

func TestMismatchedClassTargetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ClassTargets did not panic")
		}
	}()
	New(Config{PredictedClasses: 3, ClassTargets: []float64{0.1}})
}

func TestReleaseUnknownFlowIsNoop(t *testing.T) {
	n := twoSwitch(Config{})
	n.Release(42)
}

func TestRequestValidationErrors(t *testing.T) {
	n := twoSwitch(Config{})
	if _, err := n.RequestGuaranteed(1, []string{"S1", "S2"}, GuaranteedSpec{}); err == nil {
		t.Error("invalid guaranteed spec accepted")
	}
	if _, err := n.RequestGuaranteed(1, []string{"S1"}, GuaranteedSpec{ClockRate: 1e5}); err == nil {
		t.Error("linkless path accepted")
	}
	if _, err := n.RequestPredictedClass(1, []string{"S1", "S2"}, 9,
		PredictedSpec{TokenRate: 1, BucketBits: 1, Delay: 1}); err == nil {
		t.Error("out-of-range class accepted")
	}
}
