// Package ispn is a Go implementation of the Integrated Services Packet
// Network architecture of Clark, Shenker and Zhang, "Supporting Real-Time
// Applications in an Integrated Services Packet Network: Architecture and
// Mechanism" (SIGCOMM 1992).
//
// The library provides the paper's three service commitments over a
// discrete-event network simulator:
//
//   - Guaranteed service: a flow reserves a clock rate r at every switch on
//     its path; weighted fair queueing isolates it from all other traffic
//     and its worst-case queueing delay obeys the Parekh-Gallager bound
//     computed from its token bucket depth b(r).
//   - Predicted service: a flow declares a token bucket (r, b) — enforced
//     once, at the network edge — and a delay/loss target (D, L) that maps
//     it to a priority class. Inside each class, FIFO+ shares jitter across
//     the aggregate and correlates that sharing across hops through a
//     jitter-offset packet header field, so the post-facto delay bound the
//     adaptive application observes stays far below the a priori bound.
//   - Datagram service: best effort below every real-time class.
//
// Every link runs the paper's unified scheduler: WFQ between guaranteed
// flows and a pseudo "flow 0" carrying the strict-priority FIFO+ classes
// plus datagram traffic.
//
// # Quick start
//
//	net := ispn.New(ispn.Config{LinkRate: 1e6, PredictedClasses: 2})
//	net.AddSwitch("A")
//	net.AddSwitch("B")
//	net.Connect("A", "B")
//	flow, err := net.RequestPredicted(1, []string{"A", "B"}, ispn.PredictedSpec{
//		TokenRate: 85_000, BucketBits: 50_000, Delay: 0.1, Loss: 0.01,
//	})
//	// attach a source to flow.Inject, run, read flow.Meter()
//	net.Run(60)
//
// See examples/ for runnable scenarios and internal/experiments for the
// reproduction of the paper's Tables 1-3.
package ispn

import (
	"ispn/internal/core"
	"ispn/internal/packet"
	"ispn/internal/playback"
	"ispn/internal/scenario"
	"ispn/internal/sched"
	"ispn/internal/serve"
	"ispn/internal/sim"
	"ispn/internal/source"
	"ispn/internal/stats"
	"ispn/internal/tcp"
)

// Core architecture types.
type (
	// Config parameterizes a network (link rate, predicted classes,
	// class delay targets, admission control, ...).
	Config = core.Config
	// Network is an ISPN instance.
	Network = core.Network
	// Flow is an admitted flow with its meter and injection point.
	Flow = core.Flow
	// Member is a lightweight handle on one predicted flow inside an
	// aggregate (Network.RequestPredictedMember): flows that share a
	// (class, path) ride one carrier Flow, each with its own policer.
	Member = core.Member
	// GuaranteedSpec is the guaranteed-service request (clock rate r).
	GuaranteedSpec = core.GuaranteedSpec
	// PredictedSpec is the predicted-service request (r, b, D, L).
	PredictedSpec = core.PredictedSpec
	// SharingMode selects the intra-class sharing discipline.
	SharingMode = core.SharingMode
	// RoutingConfig configures failure-aware rerouting (pass to
	// Network.SetRouting): automatic reroute on FailLink, path policy
	// (shortest/spread) and link cost (hops/delay/load).
	RoutingConfig = core.RoutingConfig
	// PartitionSpec configures sharded parallel execution (pass to
	// Network.SetShards before creating flows): shard count, Together
	// constraints and per-switch pins. A sharded run is bit-identical to
	// the sequential engine on the same assignment.
	PartitionSpec = core.PartitionSpec
	// Profile is a per-port scheduling profile: discipline kind, sharing
	// mode, class targets, datagram quota and FIFO+ gain. Pass one to
	// Network.ConnectWith to deploy heterogeneous pipelines link by link.
	Profile = sched.Profile
	// Packet is the simulated packet.
	Packet = packet.Packet
	// Engine is the discrete-event engine driving a network.
	Engine = sim.Engine
	// RNG is a deterministic random stream.
	RNG = sim.RNG
	// DelayRecorder accumulates delay samples with exact percentiles.
	DelayRecorder = stats.Recorder
)

// Sharing modes (ablations; the paper's design is SharingFIFOPlus).
const (
	SharingFIFOPlus = core.SharingFIFOPlus
	SharingFIFO     = core.SharingFIFO
	SharingRR       = core.SharingRoundRobin
)

// Routing policies for RoutingConfig.Policy.
const (
	PolicyShortest = core.PolicyShortest
	PolicySpread   = core.PolicySpread
)

// Per-port pipeline kinds for Profile.Kind (see sched.PipelineKinds for the
// live registry, which RegisterPipeline can extend).
const (
	KindUnified      = sched.KindUnified
	KindWFQ          = sched.KindWFQ
	KindFIFO         = sched.KindFIFO
	KindFIFOPlus     = sched.KindFIFOPlus
	KindVirtualClock = sched.KindVirtualClock
	KindDRR          = sched.KindDRR
)

// NoDatagramQuota is the Config/Profile DatagramQuota sentinel meaning
// "reserve nothing for datagram traffic" (the zero value means "use the
// paper's default 10%").
const NoDatagramQuota = core.NoDatagramQuota

// PipelineKinds returns the registered per-port pipeline kind names.
func PipelineKinds() []string { return sched.PipelineKinds() }

// Service classes.
const (
	Guaranteed = packet.Guaranteed
	Predicted  = packet.Predicted
	Datagram   = packet.Datagram
)

// New creates a network whose links all run the unified scheduler.
func New(cfg Config) *Network { return core.New(cfg) }

// PGBound is the Parekh-Gallager queueing-delay bound as the paper prints
// it: b/r + (K−1)·Lmax/r for a K-hop path.
func PGBound(bucketBits, rateBits float64, hops int, maxPktBits float64) float64 {
	return core.PGBound(bucketBits, rateBits, hops, maxPktBits)
}

// PGBoundPacketized adds Parekh's per-hop non-preemption term K·Lmax/µ.
func PGBoundPacketized(bucketBits, rateBits float64, hops int, maxPktBits, linkRate float64) float64 {
	return core.PGBoundPacketized(bucketBits, rateBits, hops, maxPktBits, linkRate)
}

// Traffic sources.
type (
	// Source generates packets into a flow.
	Source = source.Source
	// MarkovConfig parameterizes the paper's two-state on/off source.
	MarkovConfig = source.MarkovConfig
	// CBRConfig parameterizes a constant-bit-rate source.
	CBRConfig = source.CBRConfig
	// PoissonConfig parameterizes a Poisson source.
	PoissonConfig = source.PoissonConfig
	// ReplayConfig parameterizes a recorded-arrival replay source.
	ReplayConfig = source.ReplayConfig
	// ReplayItem is one packet of a recorded arrival process.
	ReplayItem = source.ReplayItem
)

// NewMarkovSource builds the paper's two-state Markov on/off source.
func NewMarkovSource(cfg MarkovConfig) *source.Markov { return source.NewMarkov(cfg) }

// NewCBRSource builds a constant-bit-rate source.
func NewCBRSource(cfg CBRConfig) *source.CBR { return source.NewCBR(cfg) }

// NewPoissonSource builds a Poisson source.
func NewPoissonSource(cfg PoissonConfig) *source.Poisson { return source.NewPoisson(cfg) }

// NewReplaySource re-emits a recorded arrival process.
func NewReplaySource(cfg ReplayConfig) *source.Replay { return source.NewReplay(cfg) }

// NewPolicedSource wraps src with a source-side token bucket (rate in
// packets/second, depth in packets), dropping nonconforming packets — the
// paper's (A, 50) host filter.
func NewPolicedSource(src Source, rate, depth float64) *source.Policed {
	return source.NewPoliced(src, rate, depth)
}

// StartSource attaches src to a flow: generated packets are allocated from
// the flow's ingress packet pool and injected at the flow's first switch
// (subject to the flow's edge policing). The source runs on the ingress
// switch's engine, so it works unchanged on sharded networks.
func StartSource(n *Network, src Source, f *Flow) {
	source.AttachPool(src, f.IngressPool())
	src.Start(f.IngressEngine(), func(p *Packet) { f.Inject(p) })
}

// TCP (datagram substrate).
type (
	// TCPConfig parameterizes a Reno-style TCP connection.
	TCPConfig = tcp.Config
	// TCPConnection is a greedy sender/receiver pair.
	TCPConnection = tcp.Connection
)

// NewTCP wires a TCP connection through the network; call Start on the
// result.
func NewTCP(n *Network, cfg TCPConfig) *TCPConnection {
	return tcp.NewConnection(n.Topology(), cfg)
}

// Playback clients (Section 2 applications).
type (
	// PlaybackClient consumes per-packet delays against a play-back
	// point.
	PlaybackClient = playback.Client
	// AdaptiveConfig parameterizes an adaptive play-back client.
	AdaptiveConfig = playback.AdaptiveConfig
)

// NewRigidClient returns a play-back client pinned at the given point.
func NewRigidClient(point float64) *playback.Rigid { return playback.NewRigid(point) }

// NewAdaptiveClient returns a play-back client that tracks the measured
// delay percentile matching its loss tolerance.
func NewAdaptiveClient(cfg AdaptiveConfig) *playback.Adaptive { return playback.NewAdaptive(cfg) }

// DeriveRNG returns a deterministic named random stream.
func DeriveRNG(seed int64, name string) *RNG { return sim.DeriveRNG(seed, name) }

// Declarative scenarios (.ispn files; see docs/SCENARIO.md for the format).
type (
	// ScenarioFile is a parsed .ispn file.
	ScenarioFile = scenario.File
	// ScenarioSim is a compiled, runnable scenario.
	ScenarioSim = scenario.Sim
	// ScenarioReport is the result of one scenario run.
	ScenarioReport = scenario.Report
	// ScenarioOptions overrides a scenario's seed or horizon.
	ScenarioOptions = scenario.Options
)

// ParseScenario parses .ispn source; name labels file:line:col diagnostics.
func ParseScenario(name string, src []byte) (*ScenarioFile, error) {
	return scenario.Parse(name, src)
}

// CompileScenario validates a parsed scenario and lowers it onto a fresh
// Network; call Run on the result.
func CompileScenario(f *ScenarioFile, opts ScenarioOptions) (*ScenarioSim, error) {
	return scenario.Compile(f, opts)
}

// LoadScenario reads, parses and compiles one .ispn file.
func LoadScenario(path string, opts ScenarioOptions) (*ScenarioSim, error) {
	return scenario.Load(path, opts)
}

// Live control plane (`ispnsim serve`; API reference in docs/SERVE.md,
// operations guide in docs/OPERATIONS.md). A ServeManager hosts concurrent
// sessions — long-running simulations driven over HTTP/JSON, with .ispn
// timeline events injectable mid-run — and its Handler mounts the whole API
// on any mux.
type (
	// ServeManager owns the session table of a control-plane server.
	ServeManager = serve.Manager
	// ServeConfig sets the scenario library directory and session cap.
	ServeConfig = serve.Config
	// ServeCreateRequest describes one session to create.
	ServeCreateRequest = serve.CreateRequest
)

// NewServeManager builds a session manager for the control-plane API.
func NewServeManager(cfg ServeConfig) *ServeManager { return serve.NewManager(cfg) }
