#!/bin/sh
# lint-teeth.sh — prove `make lint` actually fails on a violation.
#
# Copies the repo into a scratch tree, seeds a deliberate unsorted-map-range
# into internal/core, and requires `go vet -vettool=ispnvet` to exit nonzero
# with a maprange finding. A lint gate that cannot fail is decoration; this
# script runs in `make ci` so the gate's teeth are themselves tested.
set -eu

GO="${GO:-go}"
root="$(cd "$(dirname "$0")/.." && pwd)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# tar keeps this portable (no rsync dependency); the build cache and any
# previously built binaries are irrelevant to the check.
(cd "$root" && tar -cf - --exclude=.git --exclude=bin --exclude='*.pprof' .) | (cd "$tmp" && tar -xf -)

cat > "$tmp/internal/core/zz_lint_teeth_seeded.go" <<'EOF'
package core

// Seeded by scripts/lint-teeth.sh: an order-dependent map iteration that
// ispnvet's maprange analyzer must reject.
func zzLintTeethSeeded(m map[string]int) int {
	total := 0
	for _, v := range m {
		if v > 0 {
			total += v
		}
	}
	return total
}
EOF

cd "$tmp"
$GO build -o bin/ispnvet ./cmd/ispnvet

out="$tmp/vet.out"
if $GO vet -vettool="$tmp/bin/ispnvet" ./internal/core >"$out" 2>&1; then
	echo "lint-teeth: FAIL — seeded maprange violation was not rejected" >&2
	cat "$out" >&2
	exit 1
fi
if ! grep -q 'zz_lint_teeth_seeded.go.*maprange' "$out"; then
	echo "lint-teeth: FAIL — vet failed, but not with the seeded maprange finding:" >&2
	cat "$out" >&2
	exit 1
fi
echo "lint-teeth: OK — seeded violation rejected by the maprange analyzer"
