#!/bin/sh
# serve-smoke: end-to-end drill of the live control plane (docs/SERVE.md,
# docs/OPERATIONS.md). Builds ispnsim, starts `serve` on an ephemeral port,
# creates a session from the scenario library, injects an outage over HTTP,
# runs to the horizon, asserts the trace stream and report came back, and
# verifies clean SIGINT shutdown. Run via `make serve-smoke` (part of
# `make ci`).
set -eu
cd "$(dirname "$0")/.."

GO=${GO:-go}
tmp=$(mktemp -d)
pid=
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/ispnsim" ./cmd/ispnsim
"$tmp/ispnsim" -addr localhost:0 serve scenarios >"$tmp/serve.log" 2>&1 &
pid=$!

# The readiness line prints only after the socket is bound.
i=0
until grep -q 'listening on' "$tmp/serve.log"; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
        echo "serve-smoke: server did not come up:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done
base=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$tmp/serve.log")

# Create a paused failover session, script an extra outage, run to the end.
curl -sf -X POST "$base/sessions" \
    -d '{"scenario": "failover", "paused": true}' >"$tmp/create.json"
grep -q '"id": "s1"' "$tmp/create.json"

curl -sf -X POST "$base/sessions/s1/events" --data-binary @- <<'EOF' >"$tmp/inject.json"
at 55s { fail s4 -> s5 }
at 65s { restore s4 -> s5 }
EOF
grep -q '"scheduled"' "$tmp/inject.json"

curl -sf -X POST "$base/sessions/s1" -d '{"action": "finish"}' |
    grep -q '"status": "done"'

# Every completed trace interval streams out, then the stream ends.
rows=$(curl -sfN "$base/sessions/s1/trace" | wc -l)
if [ "$rows" -lt 12 ]; then
    echo "serve-smoke: trace stream yielded $rows rows, want >= 12" >&2
    exit 1
fi

curl -sf "$base/sessions/s1/report" >"$tmp/report.txt"
grep -q '^scenario failover:' "$tmp/report.txt"

# Clean shutdown on SIGINT.
kill -INT "$pid"
wait "$pid"
pid=
grep -q 'shutting down' "$tmp/serve.log"

echo "serve-smoke OK ($rows trace rows)"
