package ispn_test

import (
	"fmt"

	"ispn"
)

// Example builds the quickstart network by hand: two switches, one
// predicted-service flow fed by the paper's bursty Markov source, and a
// short run. The a priori bound comes from the flow's class target; the
// measured delays sit far below it — the predicted-service bet.
func Example() {
	net := ispn.New(ispn.Config{
		Seed:         42,
		ClassTargets: []float64{0.100, 1.0},
	})
	net.AddSwitch("A")
	net.AddSwitch("B")
	net.Connect("A", "B")

	flow, err := net.RequestPredicted(1, []string{"A", "B"}, ispn.PredictedSpec{
		TokenRate:  85_000,
		BucketBits: 50_000,
		Delay:      0.100,
		Loss:       0.01,
	})
	if err != nil {
		panic(err)
	}
	src := ispn.NewMarkovSource(ispn.MarkovConfig{
		SizeBits: 1000,
		PeakRate: 170,
		AvgRate:  85,
		Burst:    5,
		RNG:      ispn.DeriveRNG(42, "source"),
	})
	ispn.StartSource(net, src, flow)

	// Nine identical competitors load the link to the paper's 83.5%, so
	// the flow sees real queueing.
	for id := uint32(2); id <= 10; id++ {
		peer, err := net.RequestPredicted(id, []string{"A", "B"}, ispn.PredictedSpec{
			TokenRate: 85_000, BucketBits: 50_000, Delay: 0.100, Loss: 0.01,
		})
		if err != nil {
			panic(err)
		}
		ispn.StartSource(net, ispn.NewMarkovSource(ispn.MarkovConfig{
			SizeBits: 1000, PeakRate: 170, AvgRate: 85, Burst: 5,
			RNG: ispn.DeriveRNG(42, fmt.Sprintf("peer-%d", id)),
		}), peer)
	}
	net.Run(60)

	fmt.Printf("class %d, a priori bound %.0f ms\n", flow.Priority, flow.Bound()*1000)
	fmt.Printf("delivered %d packets, max queueing %.1f ms\n",
		flow.Delivered(), flow.Meter().Max()*1000)
	// Output:
	// class 0, a priori bound 100 ms
	// delivered 5100 packets, max queueing 26.1 ms
}

// ExampleNetwork_RequestGuaranteed_rejection shows admission control
// refusing a guaranteed reservation that would invade the datagram quota:
// each link reserves at most 90% of its 1 Mbit/s for real-time clock rates,
// so a second 500 kbit/s circuit fits but a third cannot.
func ExampleNetwork_RequestGuaranteed_rejection() {
	net := ispn.New(ispn.Config{Seed: 1})
	net.AddSwitch("A")
	net.AddSwitch("B")
	net.Connect("A", "B")

	for id := uint32(1); id <= 3; id++ {
		_, err := net.RequestGuaranteed(id, []string{"A", "B"}, ispn.GuaranteedSpec{
			ClockRate: 500_000, BucketBits: 50_000,
		})
		if err != nil {
			fmt.Printf("flow %d rejected\n", id)
		} else {
			fmt.Printf("flow %d admitted\n", id)
		}
	}
	// Output:
	// flow 1 admitted
	// flow 2 rejected
	// flow 3 rejected
}

// ExampleLoadScenario runs a declarative scenario from source instead of
// Go: the same two-switch quickstart, written as an .ispn file (the format
// docs/SCENARIO.md specifies, and the files under scenarios/ use).
func ExampleLoadScenario() {
	src := `
# Quickstart, declaratively.
net :: Net(rate 1Mbps, targets [100ms, 1s])
run :: Run(seed 42, horizon 60s, percentiles [50%, 99%])

A, B :: Switch
A -> B

conf :: Predicted(rate 85kbps, bucket 50kbit, delay 100ms, loss 1%, path A -> B)
cam :: Markov(peak 170pps, avg 85pps, burst 5, size 1000bit)
cam -> conf

# Best-effort cross-traffic so the conference sees a loaded link.
bulk :: Datagram(path A -> B)
hose :: Poisson(rate 800pps, size 1000bit)
hose -> bulk
`
	file, err := ispn.ParseScenario("quickstart.ispn", []byte(src))
	if err != nil {
		panic(err)
	}
	sim, err := ispn.CompileScenario(file, ispn.ScenarioOptions{})
	if err != nil {
		panic(err)
	}
	report := sim.Run()

	f := report.Flows[0]
	fmt.Printf("%s: %s over %d hop, %d delivered\n", f.Name, f.Service, f.Hops, f.Delivered)
	fmt.Printf("bound %.0f ms, max %.1f ms\n", f.BoundMS, f.MaxMS)
	// Output:
	// conf: predicted/0 over 1 hop, 4980 delivered
	// bound 100 ms, max 1.0 ms
}

// ExampleParseScenario_timeline scripts a dynamic scenario: a guaranteed
// trunk arrives mid-run through admission control, a rival request is
// refused while it holds the link, and the same request succeeds after the
// trunk departs and releases its reservation.
func ExampleParseScenario_timeline() {
	src := `
net :: Net(rate 1Mbps)
run :: Run(seed 1, horizon 10s)
A, B :: Switch
A -> B

at 1s { trunk :: Guaranteed(rate 500kbps, path A -> B) }
at 2s { rival :: Guaranteed(rate 500kbps, path A -> B) }
at 3s { remove trunk }
at 4s { late :: Guaranteed(rate 500kbps, path A -> B) }
`
	file, err := ispn.ParseScenario("timeline.ispn", []byte(src))
	if err != nil {
		panic(err)
	}
	sim, err := ispn.CompileScenario(file, ispn.ScenarioOptions{})
	if err != nil {
		panic(err)
	}
	report := sim.Run()

	for _, f := range report.Flows {
		state := "admitted"
		if f.Rejected {
			state = "rejected"
		} else if f.Departed {
			state = "departed"
		}
		fmt.Printf("%s at %.0fs: %s\n", f.Name, f.ArriveS, state)
	}
	a := report.Admission
	fmt.Printf("%d requested, %d admitted, %d rejected, %d departed\n",
		a.Requested, a.Admitted, a.Rejected, a.Departed)
	// Output:
	// trunk at 1s: departed
	// rival at 2s: rejected
	// late at 4s: admitted
	// 3 requested, 2 admitted, 1 rejected, 1 departed
}
