GO ?= go
SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: ci vet lint lint-teeth build examples test scenario-check bench-smoke bench bench-json fmt-check profile fuzz-smoke serve-smoke cover

ci: vet lint lint-teeth build examples test scenario-check bench-smoke fuzz-smoke serve-smoke

vet:
	$(GO) vet ./...

# Run the repo's own analyzer suite (cmd/ispnvet, catalog in
# docs/ANALYSIS.md) through the go vet driver, plus staticcheck when it is
# installed (CI installs a pinned version; locally it is optional).
lint:
	$(GO) build -o bin/ispnvet ./cmd/ispnvet
	$(GO) vet -vettool=$(CURDIR)/bin/ispnvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; fi

# Prove the lint gate has teeth: seed an unsorted map range into a copy of
# internal/core and require `go vet -vettool` to reject it.
lint-teeth:
	./scripts/lint-teeth.sh

build:
	$(GO) build ./...

# Build every runnable example explicitly (they are also covered by build,
# but this target keeps them honest if the module layout changes).
examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# Parse and validate the whole scenario library without simulating; the
# full parse+simulate round trip runs under test (TestLibraryParsesAndSimulates).
scenario-check:
	$(GO) run ./cmd/ispnsim check scenarios/*.ispn

# One-iteration benchmark smoke run: catches harness regressions (and the
# zero-alloc steady state via -benchmem) without the cost of full timing.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SimulatorThroughput|ShardedThroughput|FacadeSmallNetwork' -benchtime 1x -benchmem .

# Full benchmark suite over every table/figure/ablation.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Tier-1 benchmark trajectory for CI: run the headline benchmarks (raw
# throughput, zero-alloc facade steady state, heterogeneous per-link
# pipelines) at a fixed iteration count, emit BENCH_<sha>.json (ns/op,
# B/op, allocs/op), and
# fail if the zero-alloc facade path regresses above 0 allocs/op. 20
# iterations keep the wall clock low while amortizing the recorder's
# occasional sample-storage growth out of the integer allocs/op report.
# The bench run lands in a temp file first (not a pipe) so a failing
# benchmark fails the target instead of vanishing behind benchjson's status.
bench-json:
	@$(GO) test -run '^$$' -bench 'SimulatorThroughput|ShardedThroughput|FacadeSmallNetwork|MixedDeployment|Failover|MillionFlows|CacheShowdown' \
		-benchtime 20x -benchmem . > BENCH.out \
		|| { cat BENCH.out; rm -f BENCH.out; exit 1; }
	@$(GO) run ./cmd/benchjson -sha $(SHA) -out BENCH_$(SHA).json \
		-gate-zero-allocs FacadeSmallNetwork \
		-gate-metric-max 'MillionFlows:bytes/flow:200' < BENCH.out \
		|| { rm -f BENCH.out; exit 1; }
	@rm -f BENCH.out

# CPU + heap profile of a representative sharded scenario run; shard
# imbalance and barrier overhead show up as coordinator/runtime frames.
# Inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/ispnsim -shards 4 -cpuprofile cpu.pprof -memprofile mem.pprof \
		run scenarios/*.ispn
	@echo "wrote cpu.pprof and mem.pprof"

# Fuzz smoke: a few seconds of coverage-guided fuzzing over the .ispn
# lexer/parser and compiler, then a randomized scenario fuzz run — every
# world simulated sequentially and sharded under the invariant oracle with
# byte-identical reports required (see docs/TESTING.md). The nightly CI job
# runs the same harnesses much longer.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParseScenario -fuzztime 5s ./internal/scenario
	$(GO) test -run '^$$' -fuzz FuzzCompileScenario -fuzztime 5s ./internal/scenario
	$(GO) run ./cmd/ispnsim -n 50 -seed 1 fuzz

# Control-plane smoke: start a real `ispnsim serve`, drive a failover
# session over HTTP (create, inject an outage, finish, stream the trace,
# fetch the report), and verify clean SIGINT shutdown (docs/OPERATIONS.md).
serve-smoke:
	./scripts/serve-smoke.sh

# Aggregate test coverage with a per-function summary.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1

# Fail on unformatted files (CI gate; prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
