GO ?= go

.PHONY: ci vet build examples test scenario-check bench-smoke bench

ci: vet build examples test scenario-check bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Build every runnable example explicitly (they are also covered by build,
# but this target keeps them honest if the module layout changes).
examples:
	$(GO) build ./examples/...

test:
	$(GO) test ./...

# Parse and validate the whole scenario library without simulating; the
# full parse+simulate round trip runs under test (TestLibraryParsesAndSimulates).
scenario-check:
	$(GO) run ./cmd/ispnsim check scenarios/*.ispn

# One-iteration benchmark smoke run: catches harness regressions (and the
# zero-alloc steady state via -benchmem) without the cost of full timing.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SimulatorThroughput|FacadeSmallNetwork' -benchtime 1x -benchmem .

# Full benchmark suite over every table/figure/ablation.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
