GO ?= go

.PHONY: ci vet build test bench-smoke bench

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One-iteration benchmark smoke run: catches harness regressions (and the
# zero-alloc steady state via -benchmem) without the cost of full timing.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SimulatorThroughput|FacadeSmallNetwork' -benchtime 1x -benchmem .

# Full benchmark suite over every table/figure/ablation.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
