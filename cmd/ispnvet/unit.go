package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"ispn/internal/analysis"
)

// vetConfig is the JSON configuration cmd/go writes for each vet unit (the
// fields ispnvet consumes; unknown fields are ignored). It mirrors
// golang.org/x/tools/go/analysis/unitchecker.Config, which is the contract
// `go vet -vettool` speaks.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitMain analyzes one package unit per the vettool protocol: typecheck
// the unit's files against the export data go vet supplies, run the suite,
// print findings to stderr, and exit 2 when there are any. The vetx facts
// file must exist afterwards even though ispnvet exchanges no facts.
func unitMain(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}
	writeVetx(cfg.VetxOutput)
	// Dependency-only invocations exist to produce facts; ispnvet has none.
	// Synthesized test mains (path ending ".test") carry no repo code.
	if cfg.VetxOnly || strings.HasSuffix(cfg.ImportPath, ".test") {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return
			}
			fatalf("%v", err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := &unitImporter{cfg: &cfg}
	imp.under = importer.ForCompiler(fset, compiler, imp.lookup)
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion, Error: func(error) {}}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	pkg := &analysis.Package{
		Path:  scopePath(cfg.ImportPath),
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags, err := analysis.RunPackage(pkg, analysis.Analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// scopePath strips go vet's test-variant decoration
// ("pkg [pkg.test]" → "pkg") so analyzer scoping sees the directory path.
func scopePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// unitImporter resolves imports through the config's ImportMap (source
// spelling → canonical path) and PackageFile (canonical path → export
// data) tables.
type unitImporter struct {
	cfg   *vetConfig
	under types.Importer
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := u.cfg.ImportMap[path]; ok {
		path = mapped
	}
	return u.under.Import(path)
}

func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	file := u.cfg.PackageFile[path]
	if file == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// writeVetx leaves an (empty) facts file where go vet expects one, keeping
// the build-cache bookkeeping happy.
func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, nil, 0o666); err != nil {
		fatalf("writing vetx: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ispnvet: "+format+"\n", args...)
	os.Exit(1)
}
