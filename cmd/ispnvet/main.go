// Command ispnvet runs the repo's custom determinism/ownership analyzers
// (internal/analysis, catalog in docs/ANALYSIS.md) over Go packages.
//
// It speaks two protocols:
//
//	ispnvet [-json] [packages...]     # standalone: loads packages itself
//	go vet -vettool=$(pwd)/bin/ispnvet ./...   # unitchecker protocol
//
// As a vettool it implements the cmd/go unit-checking contract: -V=full
// prints a version for the build cache, -flags advertises no extra flags,
// and a *.cfg argument analyzes one package from the JSON configuration go
// vet supplies (export data for imports, so no re-typechecking of
// dependencies). Diagnostics print as file:line:col: message [analyzer];
// any finding makes the exit status nonzero and fails `make lint`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ispn/internal/analysis"
)

const version = "v1.0.0"

func main() {
	// The cmd/go vettool protocol probes before any real work:
	//   ispnvet -V=full   → one line identifying the tool for cache keys
	//   ispnvet -flags    → JSON list of tool flags (none beyond the core)
	//   ispnvet foo.cfg   → analyze one unit
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			fmt.Printf("ispnvet version %s\n", version)
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			unitMain(os.Args[1])
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (CI artifact mode)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ispnvet [-json] [packages]\n       go vet -vettool=<path-to-ispnvet> [packages]\n\nanalyzers:\n")
		for _, a := range analysis.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	pkgs, err := analysis.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ispnvet:", err)
		os.Exit(1)
	}
	diags, err := analysis.RunPackages(pkgs, analysis.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ispnvet:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "ispnvet:", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ispnvet: %d finding(s)\n", len(diags))
		}
		os.Exit(2)
	}
}
