package main

import "testing"

func TestParseMetricsCustomUnits(t *testing.T) {
	var r Result
	err := parseMetrics("13053 ns/op 81.89 bytes/flow 1000000 flows 32 B/op 2 allocs/op", &r)
	if err != nil {
		t.Fatal(err)
	}
	if r.NsPerOp != 13053 || r.BytesPerOp != 32 || r.AllocsPerOp != 2 {
		t.Fatalf("standard metrics misparsed: %+v", r)
	}
	if r.Metrics["bytes/flow"] != 81.89 || r.Metrics["flows"] != 1000000 {
		t.Fatalf("custom metrics misparsed: %+v", r.Metrics)
	}
}

func TestParseMetricGates(t *testing.T) {
	gates, err := parseMetricGates("MillionFlows:bytes/flow:200")
	if err != nil {
		t.Fatal(err)
	}
	want := metricGate{Bench: "MillionFlows", Unit: "bytes/flow", Max: 200}
	if len(gates) != 1 || gates[0] != want {
		t.Fatalf("gates = %+v, want [%+v]", gates, want)
	}
	if _, err := parseMetricGates("missing-limit"); err == nil {
		t.Fatal("malformed gate accepted")
	}
	if _, err := parseMetricGates("a:b:notanumber"); err == nil {
		t.Fatal("non-numeric limit accepted")
	}
	if gates, err := parseMetricGates(""); err != nil || gates != nil {
		t.Fatalf("empty spec should be a no-op, got %+v, %v", gates, err)
	}
}
