// Command benchjson turns `go test -bench -benchmem` output into a small
// JSON document for CI artifact upload, and optionally gates on regressions.
// The repo's zero-alloc facade path (BenchmarkFacadeSmallNetwork) must stay
// at 0 allocs/op, and the million-flow benchmark's resident-state metric
// (bytes/flow) has a hard ceiling; CI fails the build the moment either
// regresses.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem . | benchjson \
//	    -sha abc1234 -out BENCH_abc1234.json -gate-zero-allocs FacadeSmallNetwork \
//	    -gate-metric-max 'MillionFlows:bytes/flow:200'
//
// Custom b.ReportMetric units ("bytes/flow", "lru-hit-%") land in each
// benchmark's "metrics" map. The bench output is also echoed to stdout so CI
// logs keep the raw numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the emitted artifact.
type Document struct {
	SHA        string   `json:"sha"`
	GoVersion  string   `json:"go_version"`
	Benchmarks []Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseMetrics reads "value unit" pairs ("42 ns/op  16 B/op  3 allocs/op").
func parseMetrics(s string, r *Result) error {
	fields := strings.Fields(s)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("bad metric value %q", fields[i])
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	return nil
}

// metricGate is one parsed -gate-metric-max entry: every benchmark whose
// name contains Bench must report the Unit metric at or under Max.
type metricGate struct {
	Bench string
	Unit  string
	Max   float64
}

func parseMetricGates(s string) ([]metricGate, error) {
	if s == "" {
		return nil, nil
	}
	var gates []metricGate
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(entry, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad gate %q, want NameSubstring:unit:max", entry)
		}
		max, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad gate limit %q: %v", parts[2], err)
		}
		gates = append(gates, metricGate{Bench: parts[0], Unit: parts[1], Max: max})
	}
	return gates, nil
}

func main() {
	out := flag.String("out", "BENCH.json", "output JSON path")
	sha := flag.String("sha", "dev", "commit SHA recorded in the document")
	gate := flag.String("gate-zero-allocs", "",
		"substring of benchmark names that must report 0 allocs/op (empty = no gate)")
	gateMax := flag.String("gate-metric-max", "",
		"comma-separated NameSubstring:unit:max entries; matching benchmarks must report the metric at or under max")
	flag.Parse()

	gates, err := parseMetricGates(*gateMax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	doc := Document{SHA: *sha, GoVersion: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // echo: CI logs keep the raw bench output
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := Result{Name: m[1]}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		if err := parseMetrics(m[3], &r); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", m[1], err)
			os.Exit(1)
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(doc.Benchmarks))

	if *gate != "" {
		gated := 0
		for _, r := range doc.Benchmarks {
			if !strings.Contains(r.Name, *gate) {
				continue
			}
			gated++
			if r.AllocsPerOp > 0 {
				fmt.Fprintf(os.Stderr,
					"benchjson: ALLOC REGRESSION: %s reports %.0f allocs/op, the zero-alloc path must stay at 0\n",
					r.Name, r.AllocsPerOp)
				os.Exit(1)
			}
		}
		if gated == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: gate %q matched no benchmark\n", *gate)
			os.Exit(1)
		}
		fmt.Printf("benchjson: alloc gate %q OK (%d benchmark(s) at 0 allocs/op)\n", *gate, gated)
	}

	for _, g := range gates {
		gated := 0
		for _, r := range doc.Benchmarks {
			if !strings.Contains(r.Name, g.Bench) {
				continue
			}
			gated++
			v, ok := r.Metrics[g.Unit]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: %s reports no %q metric\n", r.Name, g.Unit)
				os.Exit(1)
			}
			if v > g.Max {
				fmt.Fprintf(os.Stderr,
					"benchjson: METRIC REGRESSION: %s reports %.2f %s, the ceiling is %.2f\n",
					r.Name, v, g.Unit, g.Max)
				os.Exit(1)
			}
		}
		if gated == 0 {
			fmt.Fprintf(os.Stderr, "benchjson: metric gate %q matched no benchmark\n", g.Bench)
			os.Exit(1)
		}
		fmt.Printf("benchjson: metric gate %s %s <= %g OK (%d benchmark(s))\n", g.Bench, g.Unit, g.Max, gated)
	}
}
