package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ispn/internal/serve"
)

// shutdownGrace bounds how long in-flight requests (including open /trace
// streams) may linger after a shutdown signal.
const shutdownGrace = 5 * time.Second

// serveMain runs the HTTP control plane until SIGINT/SIGTERM, then shuts
// down gracefully: stop accepting, drain handlers, stop every session
// goroutine. The "listening" line prints only after the socket is bound, so
// scripts can treat it as the readiness mark.
func serveMain(addr, dir string) error {
	m := serve.NewManager(serve.Config{ScenarioDir: dir})
	srv := &http.Server{Handler: m.Handler()}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("ispnsim serve: listening on http://%s (scenario library: %s)\n", ln.Addr(), dir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		m.Close()
		return err
	case s := <-sig:
		fmt.Printf("ispnsim serve: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		err := srv.Shutdown(ctx)
		m.Close()
		return err
	}
}
