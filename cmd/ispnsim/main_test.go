package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestUsageVerbsSortedAndComplete pins the generated usage text: every verb
// appears in sorted order with its flag summary, so help cannot drift from
// the dispatcher.
func TestUsageVerbsSortedAndComplete(t *testing.T) {
	u := buildUsage()
	wantVerbs := []string{"check", "fuzz", "run", "scenarios", "serve"}
	if len(verbs) != len(wantVerbs) {
		t.Fatalf("verb table has %d entries, dispatcher handles %d", len(verbs), len(wantVerbs))
	}
	names := make([]string, len(verbs))
	for i, v := range verbs {
		names[i] = v.name
	}
	sort.Strings(names)
	for i, want := range wantVerbs {
		if names[i] != want {
			t.Fatalf("verb table = %v, want %v", names, wantVerbs)
		}
	}
	// Sorted order in the rendered text: each verb's help starts at a line
	// beginning with two spaces + name, and those lines appear in order.
	last := -1
	for _, v := range wantVerbs {
		idx := strings.Index(u, "\n  "+v+" ")
		if idx < 0 {
			idx = strings.Index(u, "\n  "+v+"\n")
		}
		if idx < 0 {
			t.Fatalf("usage lacks verb %q:\n%s", v, u)
		}
		if idx < last {
			t.Errorf("verb %q out of sorted order in usage", v)
		}
		last = idx
	}
	for _, v := range verbs {
		if v.flags != "" && !strings.Contains(u, "flags: "+v.flags) {
			t.Errorf("usage lacks flag summary for %q (%q)", v.name, v.flags)
		}
	}
	if !strings.Contains(u, "serve") || !strings.Contains(u, "docs/SERVE.md") {
		t.Error("usage does not point serve users at docs/SERVE.md")
	}
}

// TestVerbsHaveLiveDocsAnchors: every verb names a docs/ page, the page
// exists in the repo, is rendered into the usage text, and actually
// documents the verb (mentions "ispnsim <verb>") — so help pointers cannot
// rot as docs are reorganized.
func TestVerbsHaveLiveDocsAnchors(t *testing.T) {
	u := buildUsage()
	for _, v := range verbs {
		if v.docs == "" {
			t.Errorf("verb %q has no docs anchor", v.name)
			continue
		}
		if !strings.Contains(u, "see "+v.docs) {
			t.Errorf("usage does not point %q users at %s", v.name, v.docs)
		}
		page := filepath.Join("..", "..", filepath.FromSlash(v.docs))
		body, err := os.ReadFile(page)
		if err != nil {
			t.Errorf("verb %q docs anchor: %v", v.name, err)
			continue
		}
		if !strings.Contains(string(body), "ispnsim "+v.name) {
			t.Errorf("%s does not mention `ispnsim %s`", v.docs, v.name)
		}
	}
}

// TestUsageExperimentsComplete: every experiment in the table shows up in
// the usage text, in table order (the order `all` runs them).
func TestUsageExperimentsComplete(t *testing.T) {
	u := buildUsage()
	last := -1
	for _, e := range experimentList {
		idx := strings.Index(u, "\n  "+e.name+" ")
		if idx < 0 {
			t.Fatalf("usage lacks experiment %q", e.name)
		}
		if idx < last {
			t.Errorf("experiment %q out of table order in usage", e.name)
		}
		last = idx
		if !strings.Contains(u, e.summary) {
			t.Errorf("usage lacks summary for %q", e.name)
		}
	}
}
