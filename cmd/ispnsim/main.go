// Command ispnsim regenerates every table and figure of Clark, Shenker &
// Zhang (SIGCOMM 1992) plus the ablation studies in DESIGN.md, runs
// declarative .ispn scenario files (see docs/SCENARIO.md), and serves the
// live HTTP/JSON control plane (see docs/SERVE.md).
//
// Usage:
//
//	ispnsim [-duration s] [-seed n] [-parallel n] [-shards n] <experiment>
//	ispnsim [-seed n] [-horizon s] [-shards n] [-check] [-cpuprofile f] [-memprofile f] run <file.ispn>...
//	ispnsim [-seed n] check <file.ispn>...
//	ispnsim [-n cases] [-seed n] [-shards n] [-corpus dir] fuzz
//	ispnsim scenarios [dir]
//	ispnsim [-addr host:port] serve [dir]
//
// where <experiment> is one of: table1, table2, table3, figure1, all,
// ablation-isolation, ablation-hops, admission, playback, discard.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"ispn/internal/experiments"
	"ispn/internal/fuzz"
	"ispn/internal/scenario"
)

// verbInfo describes one scenario verb for the generated usage text: its
// argument shape, the global flags it honors, a one-line summary, and the
// docs/ page that documents it. The usage renderer sorts by name, so adding
// a verb here cannot leave the help stale or misordered (main_test.go pins
// the table against the dispatcher and requires every docs anchor to exist
// and mention its verb).
type verbInfo struct {
	name    string
	args    string
	flags   string
	summary string
	docs    string
}

var verbs = []verbInfo{
	{"check", "<file.ispn>...", "-seed -horizon -shards",
		"parse and validate scenario files without running",
		"docs/SCENARIO.md"},
	{"fuzz", "", "-n -seed -shards -corpus",
		"generate -n random worlds, run each sequentially and sharded\nunder the invariant oracle, minimize failures",
		"docs/TESTING.md"},
	{"run", "<file.ispn>...", "-seed -horizon -shards -check -parallel -cpuprofile -memprofile",
		"simulate scenario files (in parallel when several)",
		"docs/SCENARIO.md"},
	{"scenarios", "[dir]", "",
		"list the scenario library (default dir: scenarios)",
		"docs/SCENARIO.md"},
	{"serve", "[dir]", "-addr",
		"serve the live HTTP/JSON control API over the scenario library\nin dir (default: scenarios)",
		"docs/SERVE.md"},
}

// experimentInfo pairs an experiment name with its summary; the list is the
// display and execution order for `all` (paper order, then extensions).
type experimentInfo struct {
	name    string
	summary string
}

var experimentList = []experimentInfo{
	{"figure1", "paper Figure 1: topology and flow layout"},
	{"table1", "paper Table 1: WFQ vs FIFO on one link"},
	{"table2", "paper Table 2: WFQ vs FIFO vs FIFO+ over 1-4 hops"},
	{"table3", "paper Table 3: unified scheduler, all service classes"},
	{"ablation-isolation", "Section 5: isolation vs sharing with one bursty flow"},
	{"ablation-hops", "Section 6: jitter growth with path length (1-8 hops)"},
	{"admission", "Section 9: measurement-based vs worst-case admission"},
	{"playback", "Sections 2-3: adaptive vs rigid play-back points"},
	{"discard", "Section 10: jitter-offset-driven late discard"},
	{"compare", "extension: the full scheduling zoo on one workload"},
	{"sweep", "extension: delay vs utilization curve per discipline"},
	{"dist", "extension: full delay distributions (ASCII histogram)"},
	{"churn", "extension: dynamic call churn through admission control"},
	{"mixed", "extension: partial FIFO+ rollout over the Table-2 chain"},
	{"failover", "extension: link failure with vs without failure-aware reroute"},
	{"cache", "extension: route-cache eviction schemes under hot-spot churn"},
}

// buildUsage renders the help text from the verb and experiment tables.
func buildUsage() string {
	var b strings.Builder
	b.WriteString("usage: ispnsim [flags] <verb> [args]\n")
	b.WriteString("       ispnsim [flags] <experiment>\n\nverbs:\n")
	sorted := append([]verbInfo(nil), verbs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
	for _, v := range sorted {
		head := v.name
		if v.args != "" {
			head += " " + v.args
		}
		lines := strings.Split(v.summary, "\n")
		fmt.Fprintf(&b, "  %-21s %s\n", head, lines[0])
		for _, l := range lines[1:] {
			fmt.Fprintf(&b, "  %-21s %s\n", "", l)
		}
		if v.flags != "" {
			fmt.Fprintf(&b, "  %-21s flags: %s\n", "", v.flags)
		}
		if v.docs != "" {
			fmt.Fprintf(&b, "  %-21s see %s\n", "", v.docs)
		}
	}
	b.WriteString("\nexperiments (also: all = every row below):\n")
	for _, e := range experimentList {
		fmt.Fprintf(&b, "  %-21s %s\n", e.name, e.summary)
	}
	b.WriteString("\nflags:\n")
	return b.String()
}

func usage() {
	fmt.Fprint(os.Stderr, buildUsage())
	flag.PrintDefaults()
}

// scenarioOptions translates explicitly set flags into compile overrides, so
// a file's own Run(seed ..., horizon ...) and Net(shards ...) knobs win
// unless the user asked.
func scenarioOptions(seed int64, horizon float64, shards int, check bool) scenario.Options {
	opts := scenario.Options{Check: check}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			opts.Seed = seed
			opts.SeedSet = true
		case "horizon":
			opts.Horizon = horizon
		case "shards":
			opts.Shards = shards
		}
	})
	return opts
}

// fuzzFlags carries the fuzz verb's knobs from main.
type fuzzFlags struct {
	n      int
	corpus string
}

// scenarioMain handles the run/check/fuzz/scenarios/serve verbs; it returns
// false when name is a classic experiment instead.
func scenarioMain(name string, args []string, seed int64, horizon float64, shards int, check bool, ff fuzzFlags, addr string) bool {
	switch name {
	case "run":
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "ispnsim run: need at least one .ispn file")
			os.Exit(2)
		}
		start := time.Now()
		results, err := experiments.RunScenarios(args, scenarioOptions(seed, horizon, shards, check))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, res := range results {
			fmt.Println(res.Report.Format())
		}
		fmt.Printf("[%d scenario(s): %.1fs wall clock]\n", len(results), time.Since(start).Seconds())
	case "check":
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "ispnsim check: need at least one .ispn file")
			os.Exit(2)
		}
		if err := experiments.CheckScenarios(args, scenarioOptions(seed, horizon, shards, check)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%d scenario(s) OK\n", len(args))
	case "fuzz":
		if len(args) != 0 {
			fmt.Fprintln(os.Stderr, "ispnsim fuzz: takes no arguments (use -n, -seed, -shards, -corpus)")
			os.Exit(2)
		}
		start := time.Now()
		sum, err := fuzz.Config{
			N: ff.n, Seed: seed, Shards: shards, Dir: ff.corpus, Log: os.Stdout,
		}.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("fuzz: %d case(s) from seed %d, %d statically inadmissible, %d failure(s) [%.1fs wall clock]\n",
			sum.Cases, seed, sum.Skipped, len(sum.Failures), time.Since(start).Seconds())
		if len(sum.Failures) > 0 {
			for _, f := range sum.Failures {
				fmt.Printf("  seed %d: %s\n", f.Seed, f.Reason)
				fmt.Printf("    repro: %s; replay: ispnsim fuzz -n 1 -seed %d\n", f.Path, f.Seed)
			}
			os.Exit(1)
		}
	case "serve":
		dir := "scenarios"
		if len(args) > 0 {
			dir = args[0]
		}
		if err := serveMain(addr, dir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "scenarios":
		dir := "scenarios"
		if len(args) > 0 {
			dir = args[0]
		}
		infos, err := experiments.ListScenarios(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, info := range infos {
			fmt.Printf("%s (%s)\n", info.Name, info.Path)
			if info.Description != "" {
				for _, line := range strings.Split(info.Description, "\n") {
					fmt.Printf("    %s\n", line)
				}
			}
			fmt.Println()
		}
	default:
		return false
	}
	return true
}

// startProfiles begins CPU profiling and arranges a heap snapshot, returning
// a stop function to run once the simulations are done.
func startProfiles(cpuPath, memPath string) func() {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
	}
	return func() {
		if cpuPath != "" {
			pprof.StopCPUProfile()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the snapshot shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				os.Exit(1)
			}
		}
	}
}

func main() {
	duration := flag.Float64("duration", 600, "simulated seconds per run (paper: 600)")
	seed := flag.Int64("seed", 1992, "random seed (scenarios: overrides the file's Run seed)")
	horizon := flag.Float64("horizon", 0, "scenario horizon override in simulated seconds (0 = the file's Run horizon)")
	parallel := flag.Int("parallel", 0, "worker count for independent sub-simulations (0 = GOMAXPROCS, 1 = sequential; results are identical either way)")
	shards := flag.Int("shards", 0, "shard one simulation across this many parallel engines (0 = sequential; scenarios: overrides the file's Net shards; reports are bit-identical)")
	check := flag.Bool("check", false, "run scenarios under the invariant oracle (adds an invariants section to each report)")
	n := flag.Int("n", 100, "fuzz: number of random worlds to generate and check")
	corpus := flag.String("corpus", "testdata/fuzz", "fuzz: directory receiving minimized failing repros")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file when done (pprof format)")
	addr := flag.String("addr", "localhost:8080", "serve: listen address for the HTTP control API")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}
	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()
	if scenarioMain(flag.Arg(0), flag.Args()[1:], *seed, *horizon, *shards, *check,
		fuzzFlags{n: *n, corpus: *corpus}, *addr) {
		return
	}
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	cfg := experiments.RunConfig{Duration: *duration, Seed: *seed, Shards: *shards}

	run := func(name string, fn func() string) {
		start := time.Now()
		out := fn()
		fmt.Println(out)
		fmt.Printf("[%s: %.1fs wall clock, %.0fs simulated, seed %d]\n\n",
			name, time.Since(start).Seconds(), *duration, *seed)
	}

	experimentsByName := map[string]func(){
		"figure1": func() {
			fmt.Println(experiments.Figure1Diagram())
			if err := experiments.ValidateFigure1(); err != nil {
				fmt.Fprintln(os.Stderr, "layout INVALID:", err)
				os.Exit(1)
			}
			fmt.Println("\n22 flows: 12 x 1 hop, 4 x 2 hops, 4 x 3 hops, 2 x 4 hops;")
			fmt.Println("every inter-switch link carries exactly 10 flows (validated).")
		},
		"table1": func() {
			run("table1", func() string { return experiments.FormatTable1(experiments.Table1(cfg)) })
		},
		"table2": func() {
			run("table2", func() string { return experiments.FormatTable2(experiments.Table2(cfg)) })
		},
		"table3": func() {
			run("table3", func() string { return experiments.FormatTable3(experiments.Table3(cfg)) })
		},
		"ablation-isolation": func() {
			run("ablation-isolation", func() string {
				return experiments.FormatIsolation(experiments.AblationIsolation(cfg))
			})
		},
		"ablation-hops": func() {
			run("ablation-hops", func() string {
				return experiments.FormatHops(experiments.AblationHops(cfg, 8))
			})
		},
		"admission": func() {
			run("admission", func() string {
				return experiments.FormatAdmission(experiments.AblationAdmission(cfg, 150))
			})
		},
		"playback": func() {
			run("playback", func() string {
				return experiments.FormatPlayback(experiments.AblationPlayback(cfg))
			})
		},
		"discard": func() {
			run("discard", func() string {
				return experiments.FormatDiscard(experiments.AblationDiscard(cfg, nil))
			})
		},
		"compare": func() {
			run("compare", func() string {
				return experiments.FormatComparison(experiments.CompareDisciplines(cfg))
			})
		},
		"sweep": func() {
			run("sweep", func() string {
				return experiments.FormatSweep(experiments.SweepLoad(cfg, nil, nil), nil)
			})
		},
		"churn": func() {
			run("churn", func() string {
				return experiments.FormatChurn(experiments.ChurnStress(cfg))
			})
		},
		"mixed": func() {
			run("mixed", func() string {
				return experiments.FormatMixed(experiments.MixedDeployment(cfg))
			})
		},
		"failover": func() {
			run("failover", func() string {
				return experiments.FormatFailover(experiments.Failover(cfg))
			})
		},
		"cache": func() {
			run("cache", func() string {
				return experiments.FormatCacheShowdown(experiments.CacheShowdown(cfg))
			})
		},
		"dist": func() {
			run("dist", func() string {
				var b string
				for _, d := range []experiments.Discipline{experiments.DiscWFQ, experiments.DiscFIFO} {
					h := experiments.DelayDistribution(d, cfg)
					b += fmt.Sprintf("aggregate delay distribution, %s (Table-1 workload):\n%s\n",
						d, h.Render(1000, "ms"))
				}
				return b
			})
		},
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, e := range experimentList {
			fmt.Printf("=== %s ===\n", e.name)
			experimentsByName[e.name]()
		}
		return
	}
	fn, ok := experimentsByName[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		usage()
		os.Exit(2)
	}
	fn()
}
