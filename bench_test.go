package ispn_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark runs the
// corresponding experiment end to end on a shortened horizon (the paper
// simulates 600 s; benchmarks default to 60 s so `go test -bench=.`
// completes in minutes) and reports domain metrics alongside wall-clock
// time. Regenerate the full-length numbers with `go run ./cmd/ispnsim all`.

import (
	"fmt"
	"runtime"
	"testing"

	"ispn"
	"ispn/internal/experiments"
	"ispn/internal/routing"
)

const benchSimSeconds = 60

func benchCfg(i int) experiments.RunConfig {
	return experiments.RunConfig{Duration: benchSimSeconds, Seed: int64(1992 + i)}
}

// BenchmarkTable1 regenerates paper Table 1: WFQ vs FIFO mean and
// 99.9th-percentile delay on one 83.5%-utilized link.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(benchCfg(i))
		if i == b.N-1 {
			b.ReportMetric(rows[0].AllFlows.P999, "WFQ-p999-ms")
			b.ReportMetric(rows[1].AllFlows.P999, "FIFO-p999-ms")
			b.ReportMetric(rows[1].AllFlows.Mean, "FIFO-mean-ms")
		}
	}
}

// BenchmarkFigure1 regenerates the Figure-1 configuration: it validates the
// 22-flow layout and pushes the Table-2 workload through the chain once
// under FIFO (the cheapest discipline), measuring simulator throughput.
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	if err := experiments.ValidateFigure1(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2Single(experiments.DiscFIFO, benchCfg(i))
		if rows.PerPath[3].N == 0 {
			b.Fatal("no packets crossed the chain")
		}
	}
}

// BenchmarkTable2 regenerates paper Table 2: WFQ vs FIFO vs FIFO+ delay
// versus path length on the Figure-1 chain.
func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(benchCfg(i))
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.PerPath[3].P999, string(r.Scheduler)+"-len4-p999-ms")
			}
		}
	}
}

// BenchmarkTable3 regenerates paper Table 3: the unified scheduler carrying
// guaranteed, predicted and TCP datagram traffic at >99% utilization.
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiments.Table3(benchCfg(i))
		if i == b.N-1 {
			b.ReportMetric(res.ByKind[experiments.GuaranteedPeak].P999, "GPeak-p999-ms")
			b.ReportMetric(res.ByKind[experiments.PredictedHigh].P999, "PHigh-p999-ms")
			b.ReportMetric(res.ByKind[experiments.PredictedLow].P999, "PLow-p999-ms")
			b.ReportMetric(100*res.LinkUtil[0], "L1-util-%")
			b.ReportMetric(100*res.DatagramDropRate, "dgram-drop-%")
		}
	}
}

// BenchmarkAblationIsolation regenerates ablation A (Section 5): who pays
// for a burst under isolation vs sharing.
func BenchmarkAblationIsolation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationIsolation(benchCfg(i))
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Burster.P999, string(r.Scheduler)+"-burster-p999-ms")
			}
		}
	}
}

// BenchmarkAblationHops regenerates ablation B (Section 6): jitter growth
// with hop count under FIFO, FIFO+ and round robin.
func BenchmarkAblationHops(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationHops(benchCfg(i), 4)
		if i == b.N-1 {
			last := rows[len(rows)-1]
			b.ReportMetric(last.P999[experiments.DiscFIFO], "FIFO-4hop-p999-ms")
			b.ReportMetric(last.P999[experiments.DiscFIFOPlus], "FIFO+-4hop-p999-ms")
		}
	}
}

// BenchmarkAblationAdmission regenerates ablation C (Section 9):
// measurement-based vs worst-case admission.
func BenchmarkAblationAdmission(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationAdmission(experiments.RunConfig{Duration: 120, Seed: int64(1 + i)}, 20)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(100*r.RealTimeUtil, r.Policy+"-util-%")
			}
		}
	}
}

// BenchmarkAblationPlayback regenerates ablation D (Sections 2-3): adaptive
// vs rigid play-back points.
func BenchmarkAblationPlayback(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPlayback(benchCfg(i))
		if i == b.N-1 {
			b.ReportMetric(r.APrioriBoundMS, "apriori-ms")
			b.ReportMetric(r.AdaptivePointMS, "adaptive-point-ms")
		}
	}
}

// BenchmarkAblationDiscard regenerates ablation E (Section 10): in-network
// late discard driven by the jitter-offset header field.
func BenchmarkAblationDiscard(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationDiscard(benchCfg(i), []float64{0, 10})
		if i == b.N-1 {
			b.ReportMetric(float64(rows[1].Discarded), "discarded-pkts")
		}
	}
}

// BenchmarkMixedDeployment regenerates the partial-rollout study: the
// Table-2 workload with 0 to 4 of the chain's links upgraded from FIFO to
// FIFO+ — the heterogeneous per-link pipeline path end to end.
func BenchmarkMixedDeployment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.MixedDeployment(experiments.RunConfig{Duration: 30, Seed: int64(1992 + i)})
		if i == b.N-1 {
			b.ReportMetric(rows[0].PerPath[3].P999, "FIFO-len4-p999-ms")
			b.ReportMetric(rows[2].PerPath[3].P999, "half-len4-p999-ms")
			b.ReportMetric(rows[4].PerPath[3].P999, "FIFO+-len4-p999-ms")
		}
	}
}

// BenchmarkFailover regenerates the failover study: a mid-run link failure
// on the Table-2 chain, no-reroute baseline vs the failure-aware routing
// subsystem (path recompute, admission on the added hops, reservation
// migration) end to end.
func BenchmarkFailover(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := experiments.Failover(experiments.RunConfig{Duration: 30, Seed: int64(1992 + i)})
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].Flows[0].Delivered), "baseline-circuit-pkts")
			b.ReportMetric(float64(rows[1].Flows[0].Delivered), "reroute-circuit-pkts")
			b.ReportMetric(float64(rows[1].Reroutes), "reroutes")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed on the Table-3
// configuration: simulated packet-hops per wall-clock second dominate how
// long every other experiment takes.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.Table3(experiments.RunConfig{Duration: 30, Seed: int64(i)})
	}
}

// buildShardMesh builds the generated benchmark mesh: four zero-delay
// three-switch chains ("clusters") joined in a ring by 5 ms links, with
// bidirectional local CBR traffic inside every cluster and a CBR flow over
// every ring link. Zero-delay links fuse each cluster into one partition
// component, so the partitioner spreads whole clusters across shards and
// the conservative lookahead is the 5 ms ring delay.
func buildShardMesh(shards int, seed int64) (*ispn.Network, []*ispn.Flow) {
	const clusters = 4
	sw := func(c, j int) string { return fmt.Sprintf("c%d.%d", c, j) }
	net := ispn.New(ispn.Config{Seed: seed, LinkRate: 10e6})
	for c := 0; c < clusters; c++ {
		for j := 0; j < 3; j++ {
			net.AddSwitch(sw(c, j))
		}
		for j := 0; j < 2; j++ {
			net.Connect(sw(c, j), sw(c, j+1))
			net.Connect(sw(c, j+1), sw(c, j))
		}
	}
	for c := 0; c < clusters; c++ {
		next := (c + 1) % clusters
		net.ConnectWith(sw(c, 2), sw(next, 0), 10e6, 0.005, nil)
		net.ConnectWith(sw(next, 0), sw(c, 2), 10e6, 0.005, nil)
	}
	if shards > 0 {
		if err := net.SetShards(ispn.PartitionSpec{Shards: shards}); err != nil {
			panic(err)
		}
	}
	var flows []*ispn.Flow
	id := uint32(1)
	addFlow := func(rate float64, path ...string) {
		f, err := net.AddDatagramFlow(id, path)
		if err != nil {
			panic(err)
		}
		src := ispn.NewCBRSource(ispn.CBRConfig{
			SizeBits: 1000, Rate: rate,
			RNG: ispn.DeriveRNG(seed, fmt.Sprintf("cbr-%d", id)),
		})
		ispn.StartSource(net, src, f)
		flows = append(flows, f)
		id++
	}
	for c := 0; c < clusters; c++ {
		addFlow(4000, sw(c, 0), sw(c, 1), sw(c, 2))
		addFlow(4000, sw(c, 2), sw(c, 1), sw(c, 0))
		addFlow(500, sw(c, 2), sw((c+1)%clusters, 0))
	}
	return net, flows
}

// BenchmarkShardedThroughput measures the sharded engine on the generated
// cluster mesh at 1, 2 and 4 shards — same workload, same (bit-identical)
// results, one event loop per shard. The 1-shard case runs the same
// coordinator machinery with no parallelism, so the ratio isolates the
// speedup from sharding rather than from code-path differences.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			net, flows := buildShardMesh(shards, 1992)
			net.Run(1) // warm-up: pools and rings sized
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Run(2)
			}
			b.StopTimer()
			var delivered int64
			for _, f := range flows {
				delivered += f.Delivered()
			}
			if delivered == 0 {
				b.Fatal("mesh delivered nothing")
			}
			b.ReportMetric(float64(delivered)/float64(b.N), "pkts/op")
		})
	}
}

// BenchmarkMillionFlows holds one million admitted predicted flows in a
// single simulation and measures what each one costs: members are spread
// over ~2000 (class, path) aggregates on a 32-leaf star, so the per-flow
// state is one inline policer slot plus a 16-byte handle — the carrier
// flows, schedulers and interned paths amortize to noise. The benchmark
// reports resident bytes/flow (CI gates this at 200 via benchjson) and
// times the admit+release cycle at full occupancy, which exercises the
// aggregate's free-slot reuse rather than ever-growing member arrays.
func BenchmarkMillionFlows(b *testing.B) {
	const (
		leaves  = 32
		members = 1_000_000
	)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	net := ispn.New(ispn.Config{Seed: 1992, LinkRate: 10e9})
	net.AddSwitch("hub")
	names := make([]string, leaves)
	for i := range names {
		names[i] = fmt.Sprintf("l%d", i)
		net.AddSwitch(names[i])
		net.Connect(names[i], "hub")
		net.Connect("hub", names[i])
	}
	paths := make([][]string, 0, leaves*(leaves-1))
	for i := 0; i < leaves; i++ {
		for j := 0; j < leaves; j++ {
			if i != j {
				paths = append(paths, []string{names[i], "hub", names[j]})
			}
		}
	}
	spec := ispn.PredictedSpec{TokenRate: 100, BucketBits: 1000, Delay: 0.5}
	handles := make([]ispn.Member, 0, members)
	for i := 0; i < members; i++ {
		m, err := net.RequestPredictedMember(paths[i%len(paths)], uint8(i%2), spec)
		if err != nil {
			b.Fatalf("member %d refused: %v", i, err)
		}
		handles = append(handles, m)
	}
	if carriers := len(net.Flows()); carriers >= members/100 {
		b.Fatalf("aggregation failed: %d carrier flows for %d members", carriers, members)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	perFlow := float64(after.HeapAlloc-before.HeapAlloc) / float64(len(handles))

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := net.RequestPredictedMember(paths[i%len(paths)], uint8(i%2), spec)
		if err != nil {
			b.Fatal(err)
		}
		m.Release()
	}
	b.StopTimer()
	b.ReportMetric(perFlow, "bytes/flow")
	b.ReportMetric(float64(len(handles)), "flows")
	if perFlow > 200 {
		b.Fatalf("resident state is %.1f bytes/flow, budget is 200", perFlow)
	}
	runtime.KeepAlive(handles)
}

// BenchmarkCacheShowdown times the DEC-TR-592 route-cache comparison (all
// four eviction schemes on the identical hot-spot churn) and publishes the
// per-scheme hit rates to the CI artifact; the run fails if the expected
// ordering — LRU over FIFO over random — ever inverts.
func BenchmarkCacheShowdown(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cells := experiments.CacheShowdown(experiments.RunConfig{Duration: 120, Seed: 9})
		if i == b.N-1 {
			rate := map[string]float64{}
			for _, c := range cells {
				rate[c.Scheme] = c.HitRate
				b.ReportMetric(100*c.HitRate, c.Scheme+"-hit-%")
			}
			lru, fifo, rnd := rate[routing.CacheLRU], rate[routing.CacheFIFO], rate[routing.CacheRandom]
			if lru < fifo || fifo < rnd {
				b.Fatalf("eviction ordering inverted: lru %.3f, fifo %.3f, random %.3f", lru, fifo, rnd)
			}
		}
	}
}

// BenchmarkFacadeSmallNetwork measures steady-state cost of the public API
// on a small mixed-service network: the network is built once, then each
// iteration advances the same running simulation by 5 seconds. With the
// packet pool, event free list, and prebound transmit events, the steady
// state allocates ~nothing (the only allocations left are the amortized
// growth of the delay recorder's sample storage).
func BenchmarkFacadeSmallNetwork(b *testing.B) {
	net := ispn.New(ispn.Config{Seed: 1992})
	net.AddSwitch("A")
	net.AddSwitch("B")
	net.Connect("A", "B")
	f, err := net.RequestPredicted(1, []string{"A", "B"}, ispn.PredictedSpec{
		TokenRate: 85_000, BucketBits: 50_000, Delay: 0.1, Loss: 0.01,
	})
	if err != nil {
		b.Fatal(err)
	}
	src := ispn.NewMarkovSource(ispn.MarkovConfig{
		SizeBits: 1000, PeakRate: 170, AvgRate: 85, Burst: 5,
		RNG: ispn.DeriveRNG(1992, "bench"),
	})
	ispn.StartSource(net, src, f)
	net.Run(5) // warm-up: pools and rings sized
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Run(5)
	}
	if f.Delivered() == 0 {
		b.Fatal("no packets delivered")
	}
}
