package ispn_test

import (
	"math"
	"testing"

	"ispn"
)

// These tests exercise the library exactly as a downstream user would:
// through the public facade only.

func TestFacadeQuickstart(t *testing.T) {
	net := ispn.New(ispn.Config{Seed: 5})
	net.AddSwitch("A")
	net.AddSwitch("B")
	net.Connect("A", "B")
	flow, err := net.RequestPredicted(1, []string{"A", "B"}, ispn.PredictedSpec{
		TokenRate: 85_000, BucketBits: 50_000, Delay: 0.1, Loss: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := ispn.NewMarkovSource(ispn.MarkovConfig{
		FlowID: 1, SizeBits: 1000, PeakRate: 170, AvgRate: 85, Burst: 5,
		RNG: ispn.DeriveRNG(5, "src"),
	})
	ispn.StartSource(net, src, flow)
	net.Run(30)
	if flow.Delivered() < 2000 {
		t.Fatalf("delivered %d, want thousands", flow.Delivered())
	}
	if flow.Meter().Mean() <= 0 {
		t.Fatal("no delay measured")
	}
}

func TestFacadeGuaranteedWithCrossTraffic(t *testing.T) {
	net := ispn.New(ispn.Config{Seed: 6})
	for _, s := range []string{"A", "B", "C"} {
		net.AddSwitch(s)
	}
	net.Connect("A", "B")
	net.Connect("B", "C")
	path := []string{"A", "B", "C"}
	g, err := net.RequestGuaranteed(1, path, ispn.GuaranteedSpec{ClockRate: 170_000, BucketBits: 1000})
	if err != nil {
		t.Fatal(err)
	}
	cbr := ispn.NewCBRSource(ispn.CBRConfig{FlowID: 1, SizeBits: 1000, Rate: 170})
	ispn.StartSource(net, cbr, g)
	// Cross traffic from a Poisson datagram flow.
	d, err := net.AddDatagramFlow(2, path)
	if err != nil {
		t.Fatal(err)
	}
	poi := ispn.NewPoissonSource(ispn.PoissonConfig{FlowID: 2, SizeBits: 1000, Rate: 700,
		RNG: ispn.DeriveRNG(6, "poisson")})
	ispn.StartSource(net, poi, d)
	net.Run(60)
	bound := ispn.PGBoundPacketized(1000, 170_000, 2, 1000, 1e6)
	if max := g.Meter().Max(); max > bound+1e-9 {
		t.Fatalf("guaranteed max %.4f exceeds bound %.4f", max, bound)
	}
	if g.Bound() != ispn.PGBound(1000, 170_000, 2, 1000) {
		t.Fatal("advertised bound mismatch")
	}
}

func TestFacadeTCP(t *testing.T) {
	net := ispn.New(ispn.Config{Seed: 7})
	net.AddSwitch("A")
	net.AddSwitch("B")
	net.ConnectDuplex("A", "B")
	conn := ispn.NewTCP(net, ispn.TCPConfig{
		DataFlowID: 10, AckFlowID: 11,
		Path: []string{"A", "B"}, ReversePath: []string{"B", "A"},
	})
	conn.Start()
	net.Run(20)
	if conn.ThroughputBits(20) < 0.8e6 {
		t.Fatalf("TCP throughput %.0f too low on idle link", conn.ThroughputBits(20))
	}
}

func TestFacadePlaybackClients(t *testing.T) {
	rigid := ispn.NewRigidClient(0.05)
	adaptive := ispn.NewAdaptiveClient(ispn.AdaptiveConfig{InitialPoint: 0.05})
	for i := 0; i < 1000; i++ {
		rigid.Deliver(0, 0.001)
		adaptive.Deliver(0, 0.001)
	}
	if rigid.Point() != 0.05 {
		t.Fatal("rigid point moved")
	}
	if adaptive.Point() >= 0.05 {
		t.Fatal("adaptive point did not move down")
	}
}

func TestFacadePolicedSource(t *testing.T) {
	net := ispn.New(ispn.Config{Seed: 8})
	net.AddSwitch("A")
	net.AddSwitch("B")
	net.Connect("A", "B")
	g, err := net.RequestGuaranteed(1, []string{"A", "B"}, ispn.GuaranteedSpec{ClockRate: 170_000})
	if err != nil {
		t.Fatal(err)
	}
	src := ispn.NewPolicedSource(ispn.NewMarkovSource(ispn.MarkovConfig{
		FlowID: 1, SizeBits: 1000, PeakRate: 170, AvgRate: 85, Burst: 5,
		RNG: ispn.DeriveRNG(8, "src"),
	}), 85, 50)
	ispn.StartSource(net, src, g)
	net.Run(120)
	if src.Stats().Dropped == 0 {
		t.Fatal("policer never dropped over 120s of bursty traffic")
	}
	if g.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestFacadePGBoundValues(t *testing.T) {
	// The paper's Guaranteed-Average 1-hop bound: 588.24 ms.
	got := ispn.PGBound(50_000, 85_000, 1, 1000) * 1000
	if math.Abs(got-588.24) > 0.01 {
		t.Fatalf("PGBound = %.2f ms, want 588.24", got)
	}
}
